package rmem

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/memctl"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Client errors.
var (
	// ErrTooManyOut is the fail-fast signal when the bounded outstanding
	// window is exhausted, mirroring edm.ErrTooManyOut: the caller is
	// overdriving the node and must back off or widen the window.
	ErrTooManyOut = errors.New("rmem: too many outstanding operations")
	ErrBadKey     = errors.New("rmem: key out of range")
	ErrTooLarge   = errors.New("rmem: value exceeds slot")
	ErrClosed     = errors.New("rmem: client closed")

	// ErrDeadline marks an operation that exhausted its retry budget: the
	// node is unreachable (dead, partitioned, or overloaded past the
	// per-ID deadline), as opposed to a request the node rejected. Failover
	// layers (cluster.Client) key on it to distinguish "node dead" from
	// "bad request". Errors matching it still match wire.ErrTimeout, so
	// existing callers are unaffected.
	ErrDeadline = errors.New("rmem: retry budget exhausted")
)

// deadlineError stamps ErrDeadline onto a reliable-layer timeout while
// keeping the original chain (wire.ErrTimeout and its attempt count).
type deadlineError struct{ cause error }

func (e *deadlineError) Error() string   { return "rmem: deadline: " + e.cause.Error() }
func (e *deadlineError) Unwrap() error   { return e.cause }
func (e *deadlineError) Is(t error) bool { return t == ErrDeadline }

// wrapDeadline tags retry-budget timeouts with ErrDeadline.
func wrapDeadline(err error) error {
	if err == nil || !errors.Is(err, wire.ErrTimeout) {
		return err
	}
	//edmlint:allow hotpath cold path: only timed-out ops allocate the wrapper
	return &deadlineError{cause: err}
}

// MaxWindow caps ClientConfig.Window. It must stay well below the server's
// duplicate-suppression window (wire.DefaultResponderWindow): while one op
// is still retrying, the other in-flight ops' completions churn the
// server's cache, and the cap keeps the slow op's entry from being evicted
// before its last retransmission.
const MaxWindow = 1024

// ClientConfig tunes the client.
type ClientConfig struct {
	// Window bounds the outstanding operations (default 32, capped at
	// MaxWindow). Requests beyond it fail fast with ErrTooManyOut, like
	// edm.Host's bounded-outstanding-ID discipline.
	Window int
	// Retry tunes the reliable layer; RetryTimeout*(MaxRetries+1) is the
	// per-ID deadline after which an operation fails with wire.ErrTimeout.
	Retry wire.ConnConfig
	// HandshakeTimeout bounds Connect (default 5 s).
	HandshakeTimeout time.Duration
	// Slots and SlotBytes override the server-advertised slot geometry for
	// the Get/Put API (zero adopts the HELLO-ACK values).
	Slots, SlotBytes int
	// Metrics receives the window/completion counters and per-opcode latency
	// histograms. Nil gets a private, unregistered instance; its embedded
	// ConnMetrics backs the reliable layer unless Retry.Metrics overrides.
	Metrics *ClientMetrics
	// NowNS supplies timestamps for the latency histograms and the trace
	// ring (nanoseconds; wall or virtual — a loopback passes its virtual
	// clock to keep runs deterministic). Nil disables latency measurement.
	NowNS func() int64
	// Trace, when non-nil, receives the reliable layer's per-op records.
	Trace *telemetry.TraceRing
}

// ClientStats counts client-side operations.
type ClientStats struct {
	Issued     uint64
	Done       uint64
	Failed     uint64 // completed with an error (timeout or remote status)
	WindowFull uint64 // fail-fast rejections
}

// Client is the compute-node handle to a live memory node: raw Read/Write/
// RMW plus the kvstore-shaped Get/Put, all asynchronously pipelined behind a
// bounded outstanding window.
//
// Callback data-lifetime contract: the []byte handed to a Read callback (and
// the *wire.Msg behind it) is owned by the transport and valid only for the
// duration of the callback. Copy it out to retain it; ReadSync and Batch.Get
// already do.
type Client struct {
	conn    *wire.Conn
	cfg     ClientConfig
	metrics *ClientMetrics
	// token identifies this client incarnation in its HELLO: the server
	// resets per-remote session state when the token changes (client
	// restart on the same port) but not on a retransmitted HELLO carrying
	// the same token.
	token [8]byte

	// ops recycles pendingOp completion records and reqs recycles request
	// messages, so steady-state Read/Write/RMW allocates nothing.
	ops  sync.Pool
	reqs sync.Pool

	mu       sync.Mutex
	slotFree *sync.Cond
	inflight int      // guarded by mu
	geo      Geometry // guarded by mu
	closed   bool     // guarded by mu
}

// NewClient builds a client over pipe. Route inbound datagrams to Deliver
// (loopback: lb.BindClient(c.Deliver); UDP: go udpClient.Run(c.Deliver)),
// then call Connect to perform the HELLO handshake.
func NewClient(pipe wire.Pipe, cfg ClientConfig) *Client {
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.Window > MaxWindow {
		cfg.Window = MaxWindow
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 5 * time.Second
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewClientMetrics(nil)
	}
	// The reliable layer inherits the client's metrics, clock, and trace
	// ring unless the Retry config wires its own.
	if cfg.Retry.Metrics == nil {
		cfg.Retry.Metrics = cfg.Metrics.Conn
	}
	if cfg.Retry.NowNS == nil {
		cfg.Retry.NowNS = cfg.NowNS
	}
	if cfg.Retry.Trace == nil {
		cfg.Retry.Trace = cfg.Trace
	}
	c := &Client{conn: wire.NewConn(pipe, cfg.Retry), cfg: cfg, metrics: cfg.Metrics}
	rand.Read(c.token[:])
	c.slotFree = sync.NewCond(&c.mu)
	return c
}

// Deliver is the inbound datagram path; wire it to the transport.
func (c *Client) Deliver(p []byte) { c.conn.Deliver(p) }

// Connect performs the HELLO handshake and adopts the server's advertised
// geometry (unless overridden in the config). The geometry is decoded inside
// the completion callback: the response message is pooled and only valid for
// the callback's duration.
//
//edmlint:allow walltime the handshake deadline bounds a real network exchange
func (c *Client) Connect() error {
	type result struct {
		geo Geometry
		err error
	}
	ch := make(chan result, 1)
	if _, err := c.conn.Call(&wire.Msg{Kind: wire.KindHello, Data: c.token[:]}, func(m *wire.Msg, err error) {
		if err == nil {
			err = m.Status.Err()
		}
		if err != nil {
			ch <- result{err: fmt.Errorf("rmem: handshake: %w", err)}
			return
		}
		geo, err := DecodeGeometry(m.Data)
		ch <- result{geo: geo, err: err}
	}); err != nil {
		return err
	}
	select {
	case r := <-ch:
		if r.err != nil {
			return r.err
		}
		c.mu.Lock()
		c.geo = r.geo
		if c.cfg.Slots > 0 {
			c.geo.Slots = c.cfg.Slots
		}
		if c.cfg.SlotBytes > 0 {
			c.geo.SlotBytes = c.cfg.SlotBytes
		}
		c.mu.Unlock()
		return nil
	case <-time.After(c.cfg.HandshakeTimeout):
		return fmt.Errorf("rmem: handshake: %w", wire.ErrTimeout)
	}
}

// Geometry reports the effective slab/slot layout (valid after Connect).
func (c *Client) Geometry() Geometry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.geo
}

// Stats snapshots the operation counters from the client's metrics.
func (c *Client) Stats() ClientStats {
	m := c.metrics
	return ClientStats{
		Issued:     m.Issued.Load(),
		Done:       m.Done.Load(),
		Failed:     m.Failed.Load(),
		WindowFull: m.WindowFull.Load(),
	}
}

// Metrics returns the client's metrics instance (never nil after NewClient).
func (c *Client) Metrics() *ClientMetrics { return c.metrics }

// ConnStats returns the underlying reliable layer's counters
// (retransmissions, timeouts, stray datagrams).
func (c *Client) ConnStats() wire.ConnStats { return c.conn.Stats() }

// Pending reports the in-flight operation count.
func (c *Client) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inflight
}

// acquire claims a window slot. With wait it blocks until one frees (batch
// mode); otherwise it fails fast with ErrTooManyOut, counted against the
// WindowFull metric only when countFull is set (the batch path probes the
// window internally and its rejections are not caller-visible backpressure).
func (c *Client) acquire(wait, countFull bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.inflight >= c.cfg.Window {
		if c.closed {
			return ErrClosed
		}
		if !wait {
			if countFull {
				c.metrics.WindowFull.Inc()
			}
			return ErrTooManyOut
		}
		c.slotFree.Wait()
	}
	if c.closed {
		return ErrClosed
	}
	c.inflight++
	c.metrics.Window.Set(int64(c.inflight))
	c.metrics.Issued.Inc()
	return nil
}

// release frees a window slot and updates completion counters.
func (c *Client) release(failed bool) {
	c.mu.Lock()
	c.inflight--
	c.metrics.Window.Set(int64(c.inflight))
	c.slotFree.Signal()
	c.mu.Unlock()
	if failed {
		c.metrics.Failed.Inc()
	} else {
		c.metrics.Done.Inc()
	}
}

// pendingOp is the pooled completion record for one in-flight operation: it
// implements wire.Completion so the hot path needs no per-op closure. Exactly
// one cb* field is set; Done dispatches to it after recycling the record.
//
//edmlint:owned callback
type pendingOp struct {
	c     *Client
	kind  wire.Kind
	start int64
	// Exactly one of these is non-nil per use.
	cbMsg   func(*wire.Msg, error)
	cbRead  func([]byte, error)
	cbWrite func(error)
	cbRMW   func(uint64, error)
}

func (o *pendingOp) clear() {
	o.c = nil
	o.cbMsg, o.cbRead, o.cbWrite, o.cbRMW = nil, nil, nil, nil
}

// Done implements wire.Completion. The response r is pooled by the reliable
// layer and valid only for this call, so every retaining path copies.
//
//edmlint:hotpath one invocation per completed op
func (o *pendingOp) Done(r *wire.Msg, err error) {
	c := o.c
	if err == nil {
		err = r.Status.Err()
	}
	err = wrapDeadline(err)
	if c.cfg.NowNS != nil && err == nil {
		if h := c.metrics.Latency[o.kind]; h != nil {
			h.Observe(c.cfg.NowNS() - o.start)
		}
	}
	c.release(err != nil)
	// Recycle the record before dispatching: the callback may issue a
	// follow-up op, and the saved locals keep this completion intact.
	cbMsg, cbRead, cbWrite, cbRMW := o.cbMsg, o.cbRead, o.cbWrite, o.cbRMW
	o.clear()
	c.ops.Put(o)
	switch {
	case cbMsg != nil:
		cbMsg(r, err)
	case cbRead != nil:
		if err != nil {
			cbRead(nil, err)
			return
		}
		cbRead(r.Data, nil)
	case cbWrite != nil:
		cbWrite(err)
	case cbRMW != nil:
		if err != nil {
			cbRMW(0, err)
			return
		}
		if len(r.Data) != 8 {
			//edmlint:allow hotpath cold path: the server sent a malformed RMW result
			cbRMW(0, fmt.Errorf("%w: RMW result %d bytes", wire.ErrBadMsg, len(r.Data)))
			return
		}
		cbRMW(binary.LittleEndian.Uint64(r.Data), nil)
	}
}

// getOp pops a pooled completion record.
func (c *Client) getOp() *pendingOp {
	if v := c.ops.Get(); v != nil {
		return v.(*pendingOp)
	}
	//edmlint:allow hotpath pool miss; steady state recycles
	return new(pendingOp)
}

// getReq pops a pooled request message.
func (c *Client) getReq() *wire.Msg {
	if v := c.reqs.Get(); v != nil {
		return v.(*wire.Msg)
	}
	//edmlint:allow hotpath pool miss; steady state recycles
	return new(wire.Msg)
}

// putReq recycles a request message. Request messages alias caller-owned
// Data/Args slices, so this fully detaches rather than Msg.Reset (which
// would keep the aliased memory alive inside the pool).
func (c *Client) putReq(m *wire.Msg) {
	*m = wire.Msg{}
	c.reqs.Put(m)
}

// issue submits one request inside the window discipline. It consumes o in
// every outcome: on success the reliable layer owns it until Done fires; on
// error it is recycled and the callback is never invoked. The caller still
// owns m afterwards (the reliable layer encodes before returning).
//
//edmlint:hotpath every client op funnels through here
func (c *Client) issue(wait, countFull bool, m *wire.Msg, o *pendingOp) error {
	if err := c.acquire(wait, countFull); err != nil {
		o.clear()
		c.ops.Put(o)
		return err
	}
	o.c = c
	o.kind = m.Kind
	o.start = 0
	if c.cfg.NowNS != nil {
		o.start = c.cfg.NowNS()
	}
	if _, err := c.conn.CallC(m, o); err != nil {
		// Submit failed, so the completion will never fire.
		c.release(true)
		o.clear()
		c.ops.Put(o)
		return err
	}
	return nil
}

// doMsg issues one request with a message-level callback (the batch path;
// the raw async API uses the typed pendingOp fields instead).
func (c *Client) doMsg(wait, countFull bool, m *wire.Msg, cb func(*wire.Msg, error)) error {
	o := c.getOp()
	o.cbMsg = cb
	return c.issue(wait, countFull, m, o)
}

// Read issues an asynchronous remote read of n bytes at addr; cb fires with
// the data or an error (wire.ErrTimeout past the per-ID deadline). It fails
// fast with ErrTooManyOut when the window is exhausted. The data slice is
// only valid for the duration of the callback — copy to retain.
//
//edmlint:hotpath
//edmlint:owned callback the data slice aliases the pooled response Msg
func (c *Client) Read(addr uint64, n int, cb func([]byte, error)) error {
	o := c.getOp()
	o.cbRead = cb
	m := c.getReq()
	m.Kind = wire.KindRREQ
	m.Addr = addr
	m.Count = uint32(n)
	err := c.issue(false, true, m, o)
	c.putReq(m)
	return err
}

// Write issues an asynchronous remote write; cb fires once the server acks.
// data is captured into the datagram before Write returns.
//
//edmlint:hotpath
func (c *Client) Write(addr uint64, data []byte, cb func(error)) error {
	o := c.getOp()
	o.cbWrite = cb
	m := c.getReq()
	m.Kind = wire.KindWREQ
	m.Addr = addr
	m.Count = uint32(len(data))
	m.Data = data
	err := c.issue(false, true, m, o)
	c.putReq(m)
	return err
}

// RMW issues an asynchronous atomic read-modify-write; cb receives the
// 64-bit result (CAS: 1 swapped / 0 not; others: the previous value).
//
//edmlint:hotpath
func (c *Client) RMW(addr uint64, op memctl.RMWOp, args []uint64, cb func(uint64, error)) error {
	o := c.getOp()
	o.cbRMW = cb
	m := c.getReq()
	m.Kind = wire.KindRMWREQ
	m.Addr = addr
	m.Op = uint8(op)
	m.Args = args
	err := c.issue(false, true, m, o)
	c.putReq(m)
	return err
}

// ReadSync is the blocking form of Read. It returns a fresh copy of the data
// (the async callback's view is only transiently valid).
func (c *Client) ReadSync(addr uint64, n int) ([]byte, error) {
	type res struct {
		data []byte
		err  error
	}
	ch := make(chan res, 1)
	if err := c.Read(addr, n, func(d []byte, err error) {
		// Copy into a fresh variable: d aliases the pooled response and
		// must not leave the callback (pooledescape proves this form).
		var data []byte
		if err == nil {
			data = append([]byte(nil), d...)
		}
		ch <- res{data, err}
	}); err != nil {
		return nil, err
	}
	r := <-ch
	return r.data, r.err
}

// WriteSync is the blocking form of Write.
func (c *Client) WriteSync(addr uint64, data []byte) error {
	ch := make(chan error, 1)
	if err := c.Write(addr, data, func(err error) { ch <- err }); err != nil {
		return err
	}
	return <-ch
}

// RMWSync is the blocking form of RMW.
func (c *Client) RMWSync(addr uint64, op memctl.RMWOp, args ...uint64) (uint64, error) {
	type res struct {
		v   uint64
		err error
	}
	ch := make(chan res, 1)
	if err := c.RMW(addr, op, args, func(v uint64, err error) { ch <- res{v, err} }); err != nil {
		return 0, err
	}
	r := <-ch
	return r.v, r.err
}

// slotAddr maps a key to its slab address under the effective geometry.
func (c *Client) slotAddr(key int) (uint64, int, error) {
	c.mu.Lock()
	geo := c.geo
	c.mu.Unlock()
	if geo.SlotBytes <= 0 {
		return 0, 0, fmt.Errorf("rmem: no slot geometry (Connect first)")
	}
	if key < 0 || key >= geo.Slots {
		return 0, 0, fmt.Errorf("%w: %d of %d", ErrBadKey, key, geo.Slots)
	}
	return uint64(key) * uint64(geo.SlotBytes), geo.SlotBytes, nil
}

// Get reads the fixed-size slot for key (the kvstore-shaped API). The data
// slice passed to cb is only valid for the duration of the callback.
//
//edmlint:owned callback the data slice aliases the pooled response Msg
func (c *Client) Get(key int, cb func([]byte, error)) error {
	addr, n, err := c.slotAddr(key)
	if err != nil {
		return err
	}
	return c.Read(addr, n, cb)
}

// Put writes value into key's slot; values shorter than the slot leave the
// tail untouched.
func (c *Client) Put(key int, value []byte, cb func(error)) error {
	addr, n, err := c.slotAddr(key)
	if err != nil {
		return err
	}
	if len(value) > n {
		return fmt.Errorf("%w: %d bytes into %d-byte slot", ErrTooLarge, len(value), n)
	}
	return c.Write(addr, value, cb)
}

// GetSync and PutSync are the blocking slot forms.
func (c *Client) GetSync(key int) ([]byte, error) {
	addr, n, err := c.slotAddr(key)
	if err != nil {
		return nil, err
	}
	return c.ReadSync(addr, n)
}

// PutSync is the blocking form of Put.
func (c *Client) PutSync(key int, value []byte) error {
	ch := make(chan error, 1)
	if err := c.Put(key, value, func(err error) { ch <- err }); err != nil {
		return err
	}
	return <-ch
}

// Close tears the session down (best-effort BYE) and fails any pending
// operations with wire.ErrClosed.
//
//edmlint:allow walltime the BYE grace period waits on a real round trip
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.slotFree.Broadcast()
	c.mu.Unlock()
	// Quiesce in-flight ops (and their retransmission timers) before the
	// BYE: the server forgets the session on BYE, and a stale request
	// retried into a fresh session would re-execute — a duplicate RMW.
	c.conn.Abort(wire.ErrClosed)
	// Best-effort teardown: give the BYE one short round trip, then close
	// regardless (the server's session state is reclaimable either way).
	wait := c.cfg.Retry.RetryTimeout
	if wait <= 0 || wait > 250*time.Millisecond {
		wait = 250 * time.Millisecond
	}
	ch := make(chan struct{}, 1)
	if _, err := c.conn.Call(&wire.Msg{Kind: wire.KindBye}, func(*wire.Msg, error) {
		ch <- struct{}{}
	}); err == nil {
		select {
		case <-ch:
		case <-time.After(wait):
		}
	}
	return c.conn.Close()
}

// BatchOp identifies one operation in a Batch.
type BatchOp struct {
	// Get: Value receives the slot contents. Put: Value is what was stored.
	Key   int
	Put   bool
	Value []byte
	Err   error
}

// Batch accumulates slot operations and issues them as one pipelined burst:
// client-side batching for the Get/Put API. Unlike the raw async calls a
// batch never fails fast — it throttles itself to the window, blocking
// until slots free.
type Batch struct {
	c   *Client
	ops []BatchOp
}

// NewBatch starts an empty batch.
func (c *Client) NewBatch() *Batch { return &Batch{c: c} }

// Get queues a slot read.
func (b *Batch) Get(key int) *Batch {
	b.ops = append(b.ops, BatchOp{Key: key})
	return b
}

// Put queues a slot write.
func (b *Batch) Put(key int, value []byte) *Batch {
	b.ops = append(b.ops, BatchOp{Key: key, Put: true, Value: value})
	return b
}

// Len reports the queued operation count.
func (b *Batch) Len() int { return len(b.ops) }

// Flush issues every queued operation pipelined, waits for all completions,
// and returns the per-op outcomes. The first error encountered (if any) is
// also returned; the batch is reset for reuse.
//
// Flush corks the reliable layer while it enqueues, so the burst leaves the
// client as coalesced datagram batches rather than one send per op. When the
// window fills mid-batch it uncorks first (corked ops cannot complete, so
// blocking while corked would deadlock), blocks for a free slot, and corks
// again for the remainder.
func (b *Batch) Flush() ([]BatchOp, error) {
	ops := b.ops
	b.ops = nil
	c := b.c
	var wg sync.WaitGroup
	c.conn.Cork()
	for i := range ops {
		op := &ops[i]
		addr, n, err := c.slotAddr(op.Key)
		if err != nil {
			op.Err = err
			continue
		}
		if op.Put && len(op.Value) > n {
			op.Err = fmt.Errorf("%w: %d bytes into %d-byte slot", ErrTooLarge, len(op.Value), n)
			continue
		}
		m := c.getReq()
		if op.Put {
			m.Kind = wire.KindWREQ
			m.Addr = addr
			m.Count = uint32(len(op.Value))
			m.Data = op.Value
		} else {
			m.Kind = wire.KindRREQ
			m.Addr = addr
			m.Count = uint32(n)
		}
		wg.Add(1)
		cb := func(r *wire.Msg, err error) {
			defer wg.Done()
			if err != nil {
				op.Err = err
				return
			}
			if !op.Put {
				// r is pooled: copy the payload out, reusing the op's
				// Value capacity across batch reuses.
				op.Value = append(op.Value[:0], r.Data...)
			}
		}
		err = c.doMsg(false, false, m, cb)
		if errors.Is(err, ErrTooManyOut) {
			c.conn.Uncork()
			err = c.doMsg(true, false, m, cb)
			c.conn.Cork()
		}
		c.putReq(m)
		if err != nil {
			wg.Done()
			op.Err = err
		}
	}
	c.conn.Uncork()
	wg.Wait()
	for i := range ops {
		if ops[i].Err != nil {
			return ops, ops[i].Err
		}
	}
	return ops, nil
}
