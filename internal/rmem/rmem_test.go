package rmem

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/memctl"
	"repro/internal/sim"
	"repro/internal/wire"
)

// loopClient stands up a server (if nil, a fresh one) and a connected client
// over a loopback with the given fault hook.
func loopClient(t *testing.T, srv *Server, ccfg ClientConfig, fault func(sim.Time, wire.Dir, []byte) wire.Fault) (*Server, *Client, *wire.Loopback) {
	t.Helper()
	if srv == nil {
		var err error
		srv, err = NewServer(ServerConfig{Geometry: Geometry{SlabBytes: 1 << 20, Slots: 64, SlotBytes: 1024}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if ccfg.Retry.RetryTimeout == 0 {
		ccfg.Retry = wire.ConnConfig{RetryTimeout: 5 * time.Millisecond, MaxRetries: 4}
	}
	lb := wire.NewLoopback(wire.LoopbackConfig{Fault: fault})
	client := NewClient(lb.ClientPipe(), ccfg)
	lb.BindServer(srv.NewSession(lb.ServerPipe()).Deliver)
	lb.BindClient(client.Deliver)
	if err := client.Connect(); err != nil {
		t.Fatalf("connect: %v", err)
	}
	return srv, client, lb
}

func TestHandshakeAdoptsGeometry(t *testing.T) {
	srv, client, _ := loopClient(t, nil, ClientConfig{}, nil)
	if got, want := client.Geometry(), srv.Geometry(); got != want {
		t.Fatalf("client geometry %+v, server %+v", got, want)
	}
	if st := srv.Stats(); st.Hellos != 1 {
		t.Errorf("server stats %+v", st)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	_, client, _ := loopClient(t, nil, ClientConfig{}, nil)
	data := bytes.Repeat([]byte{0xc3}, 512)
	if err := client.WriteSync(4096, data); err != nil {
		t.Fatal(err)
	}
	got, err := client.ReadSync(4096, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read returned different bytes than written")
	}
	// Unwritten memory reads as zero, like fresh DRAM in the model.
	zero, err := client.ReadSync(64<<10, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(zero, make([]byte, 16)) {
		t.Fatal("fresh memory not zero")
	}
}

func TestRemoteErrors(t *testing.T) {
	srv, client, _ := loopClient(t, nil, ClientConfig{}, nil)
	slab := srv.Geometry().SlabBytes
	if _, err := client.ReadSync(slab, 8); !errors.Is(err, wire.ErrRemote) {
		t.Errorf("out-of-range read: %v", err)
	}
	if err := client.WriteSync(slab-4, make([]byte, 8)); !errors.Is(err, wire.ErrRemote) {
		t.Errorf("out-of-range write: %v", err)
	}
	if _, err := client.RMWSync(3, memctl.OpFetchAdd, 1); !errors.Is(err, wire.ErrRemote) {
		t.Errorf("unaligned RMW: %v", err)
	}
	if _, err := client.RMWSync(0, memctl.RMWOp(99), 1); !errors.Is(err, wire.ErrRemote) {
		t.Errorf("bad opcode: %v", err)
	}
	if st := srv.Stats(); st.Errors != 4 {
		t.Errorf("server error count %d, want 4 (%+v)", st.Errors, st)
	}
}

func TestRMWMenu(t *testing.T) {
	_, client, _ := loopClient(t, nil, ClientConfig{}, nil)
	const addr = 128
	if _, err := client.RMWSync(addr, memctl.OpSwap, 7); err != nil {
		t.Fatal(err)
	}
	if v, err := client.RMWSync(addr, memctl.OpFetchAdd, 3); err != nil || v != 7 {
		t.Fatalf("fetch-add: %d, %v", v, err)
	}
	if v, err := client.RMWSync(addr, memctl.OpCAS, 10, 42); err != nil || v != 1 {
		t.Fatalf("cas(10->42): %d, %v", v, err)
	}
	if v, err := client.RMWSync(addr, memctl.OpCAS, 10, 77); err != nil || v != 0 {
		t.Fatalf("cas(stale) should fail: %d, %v", v, err)
	}
	got, err := client.ReadSync(addr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Fatalf("final word %v", got)
	}
}

// TestRetransmissionRecovers is the acceptance-path e2e: a dropped datagram
// is retried by the reliable layer and the operation still succeeds.
func TestRetransmissionRecovers(t *testing.T) {
	var mu sync.Mutex
	dropped := 0
	// Drop the first two post-handshake request datagrams.
	fault := func(_ sim.Time, dir wire.Dir, p []byte) wire.Fault {
		mu.Lock()
		defer mu.Unlock()
		m, err := wire.Decode(p)
		if err == nil && dir == wire.ToServer && m.Kind == wire.KindWREQ && dropped < 2 {
			dropped++
			return wire.FaultDrop
		}
		return wire.FaultNone
	}
	srv, client, lb := loopClient(t, nil, ClientConfig{}, fault)
	if err := client.WriteSync(0, []byte("persist me")); err != nil {
		t.Fatalf("write across drops: %v", err)
	}
	got, err := client.ReadSync(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "persist me" {
		t.Fatalf("read back %q", got)
	}
	if dropped != 2 {
		t.Fatalf("fault hook dropped %d datagrams", dropped)
	}
	if st := lb.Stats(); st.Dropped != 2 {
		t.Errorf("loopback stats %+v", st)
	}
	if st := srv.Stats(); st.Writes != 1 {
		t.Errorf("server executed %d writes, want exactly 1 (%+v)", st.Writes, st)
	}
}

// TestDuplicateRMWExactlyOnce: dropping every first response forces a
// retransmission of every request; the dedup window must keep the fetch-add
// count exact.
func TestDuplicateRMWExactlyOnce(t *testing.T) {
	seen := map[uint32]bool{}
	var mu sync.Mutex
	fault := func(_ sim.Time, dir wire.Dir, p []byte) wire.Fault {
		if dir != wire.ToClient {
			return wire.FaultNone
		}
		m, err := wire.Decode(p)
		if err != nil || m.Kind != wire.KindRMWRESP {
			return wire.FaultNone
		}
		mu.Lock()
		defer mu.Unlock()
		if !seen[m.ID] {
			seen[m.ID] = true
			return wire.FaultDrop
		}
		return wire.FaultNone
	}
	_, client, _ := loopClient(t, nil, ClientConfig{}, fault)
	const rounds = 50
	for i := 0; i < rounds; i++ {
		if _, err := client.RMWSync(0, memctl.OpFetchAdd, 1); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	v, err := client.RMWSync(0, memctl.OpFetchAdd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != rounds {
		t.Fatalf("counter = %d after %d increments: duplicates executed", v, rounds)
	}
}

// TestRMWAtomicityConcurrentClients hammers one counter word from several
// concurrent client sessions; the slab lock must keep every increment.
func TestRMWAtomicityConcurrentClients(t *testing.T) {
	srv, err := NewServer(ServerConfig{Geometry: Geometry{SlabBytes: 1 << 20, Slots: 16, SlotBytes: 64}})
	if err != nil {
		t.Fatal(err)
	}
	const (
		clients = 4
		rounds  = 200
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		_, client, _ := loopClient(t, srv, ClientConfig{}, nil)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer client.Close()
			for j := 0; j < rounds; j++ {
				if _, err := client.RMWSync(0, memctl.OpFetchAdd, 1); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	_, check, _ := loopClient(t, srv, ClientConfig{}, nil)
	v, err := check.RMWSync(0, memctl.OpFetchAdd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != clients*rounds {
		t.Fatalf("counter = %d, want %d: lost increments under concurrency", v, clients*rounds)
	}
}

// TestWindowFailFast mirrors edm.ErrTooManyOut: with the transport dark and
// the window full, the next op is rejected immediately.
func TestWindowFailFast(t *testing.T) {
	fault := func(_ sim.Time, dir wire.Dir, _ []byte) wire.Fault {
		if dir == wire.ToServer {
			return wire.FaultDrop
		}
		return wire.FaultNone
	}
	srv, err := NewServer(ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// A dark transport: requests vanish, so the window fills and stays full.
	dark := wire.NewLoopback(wire.LoopbackConfig{Fault: fault})
	darkClient := NewClient(dark.ClientPipe(),
		ClientConfig{Window: 4, Retry: wire.ConnConfig{RetryTimeout: time.Minute, MaxRetries: 1}})
	dark.BindServer(srv.NewSession(dark.ServerPipe()).Deliver)
	dark.BindClient(darkClient.Deliver)
	// Handshake would hang (requests dropped); skip Connect and use raw reads.
	for i := 0; i < 4; i++ {
		if err := darkClient.Read(0, 8, func([]byte, error) {}); err != nil {
			t.Fatalf("read %d rejected early: %v", i, err)
		}
	}
	if err := darkClient.Read(0, 8, func([]byte, error) {}); !errors.Is(err, ErrTooManyOut) {
		t.Fatalf("5th read: %v, want ErrTooManyOut", err)
	}
	if st := darkClient.Stats(); st.WindowFull != 1 {
		t.Errorf("client stats %+v", st)
	}
	darkClient.Close()
}

func TestKVAndBatch(t *testing.T) {
	_, client, _ := loopClient(t, nil, ClientConfig{}, nil)
	geo := client.Geometry()
	if err := client.PutSync(3, []byte("value-3")); err != nil {
		t.Fatal(err)
	}
	got, err := client.GetSync(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != geo.SlotBytes || string(got[:7]) != "value-3" {
		t.Fatalf("slot read %d bytes, prefix %q", len(got), got[:7])
	}
	if err := client.PutSync(geo.Slots, []byte("x")); !errors.Is(err, ErrBadKey) {
		t.Errorf("put past last slot: %v", err)
	}
	if err := client.PutSync(0, make([]byte, geo.SlotBytes+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize put: %v", err)
	}

	// Batch: pipelined puts then gets across the window boundary.
	b := client.NewBatch()
	for k := 0; k < 40; k++ {
		b.Put(k, []byte(fmt.Sprintf("slot-%02d", k)))
	}
	if _, err := b.Flush(); err != nil {
		t.Fatalf("batch put: %v", err)
	}
	for k := 0; k < 40; k++ {
		b.Get(k)
	}
	ops, err := b.Flush()
	if err != nil {
		t.Fatalf("batch get: %v", err)
	}
	for _, op := range ops {
		want := fmt.Sprintf("slot-%02d", op.Key)
		if string(op.Value[:len(want)]) != want {
			t.Fatalf("slot %d read back %q", op.Key, op.Value[:len(want)])
		}
	}
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{Geometry: Geometry{SlabBytes: 1 << 20, Slots: 10, SlotBytes: 1 << 19}}); err == nil {
		t.Error("slots overflowing the slab accepted")
	}
	if _, err := NewServer(ServerConfig{Geometry: Geometry{SlotBytes: wire.MaxData + 1}}); err == nil {
		t.Error("slot larger than a datagram accepted")
	}
	srv, err := NewServer(ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	g := srv.Geometry()
	if g.SlabBytes == 0 || g.Slots == 0 || g.SlotBytes == 0 {
		t.Fatalf("defaults not filled: %+v", g)
	}
}

// TestUDPEndToEnd runs the full stack over real sockets: UDP server glue,
// handshake, reads/writes/RMWs from two concurrent clients.
func TestUDPEndToEnd(t *testing.T) {
	srv, err := NewServer(ServerConfig{Geometry: Geometry{SlabBytes: 1 << 20, Slots: 32, SlotBytes: 256}})
	if err != nil {
		t.Fatal(err)
	}
	us, err := wire.ListenUDP("127.0.0.1:0", func(_ string, reply wire.Pipe) func([]byte) {
		return srv.NewSession(reply).Deliver
	})
	if err != nil {
		t.Fatal(err)
	}
	defer us.Close()

	dial := func() *Client {
		uc, err := wire.DialUDP(us.Addr())
		if err != nil {
			t.Fatal(err)
		}
		client := NewClient(uc, ClientConfig{Retry: wire.ConnConfig{RetryTimeout: 100 * time.Millisecond, MaxRetries: 10}})
		go uc.Run(client.Deliver)
		if err := client.Connect(); err != nil {
			t.Fatal(err)
		}
		return client
	}

	// The shared counter lives in the last slot so it cannot collide with
	// the per-client kv slots written below.
	counter := uint64(31) * 256
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		i := i
		client := dial()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer client.Close()
			for j := 0; j < 50; j++ {
				if _, err := client.RMWSync(counter, memctl.OpFetchAdd, 1); err != nil {
					errs <- fmt.Errorf("client %d rmw %d: %w", i, j, err)
					return
				}
			}
			val := []byte(fmt.Sprintf("client-%d", i))
			if err := client.PutSync(i, val); err != nil {
				errs <- err
				return
			}
			got, err := client.GetSync(i)
			if err != nil {
				errs <- err
				return
			}
			if string(got[:len(val)]) != string(val) {
				errs <- fmt.Errorf("client %d read back %q", i, got[:len(val)])
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	check := dial()
	defer check.Close()
	v, err := check.RMWSync(counter, memctl.OpFetchAdd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 100 {
		t.Fatalf("UDP concurrent counter = %d, want 100", v)
	}
}
