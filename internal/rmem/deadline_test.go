package rmem

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/wire"
)

// TestErrDeadlineTyped pins the retry-budget-exhaustion contract: the error
// matches both rmem.ErrDeadline (the service-level triage the cluster layer
// keys failover on) and wire.ErrTimeout (the transport cause), while status
// errors from the server do not masquerade as deadlines.
func TestErrDeadlineTyped(t *testing.T) {
	var dark atomic.Bool
	fault := func(sim.Time, wire.Dir, []byte) wire.Fault {
		if dark.Load() {
			return wire.FaultDrop
		}
		return wire.FaultNone
	}
	_, client, _ := loopClient(t, nil,
		ClientConfig{Window: 4, Retry: wire.ConnConfig{RetryTimeout: time.Millisecond, MaxRetries: 1}},
		fault)

	// A server status error (out-of-range read) is NOT a deadline.
	_, err := client.ReadSync(1<<60, 64)
	if err == nil {
		t.Fatal("out-of-range read succeeded")
	}
	if errors.Is(err, ErrDeadline) {
		t.Fatalf("status error %v matches ErrDeadline", err)
	}

	// Darken the link: the retry budget burns down and the failure is typed.
	dark.Store(true)
	_, err = client.ReadSync(0, 64)
	if err == nil {
		t.Fatal("read over dark link succeeded")
	}
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want match for rmem.ErrDeadline", err)
	}
	if !errors.Is(err, wire.ErrTimeout) {
		t.Fatalf("err = %v, want the wire.ErrTimeout cause preserved", err)
	}
	if err := client.WriteSync(0, make([]byte, 8)); !errors.Is(err, ErrDeadline) {
		t.Fatalf("write err = %v, want match for rmem.ErrDeadline", err)
	}
}
