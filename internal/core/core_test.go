package core

import (
	"testing"

	"repro/internal/memctl"
)

// TestFacade exercises the aliased entry points end to end: the package
// must expose a working fabric without callers importing internal/edm.
func TestFacade(t *testing.T) {
	fabric := New(DefaultConfig(2))
	fabric.AttachMemory(1, memctl.New(memctl.DefaultConfig()))
	lat, err := fabric.WriteSync(0, 1, 0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatal("non-positive write latency")
	}
	data, _, err := fabric.ReadSync(0, 1, 0, 8)
	if err != nil || data[0] != 1 {
		t.Fatalf("read: %v %v", data, err)
	}
}
