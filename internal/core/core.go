// Package core is the entry point to the paper's primary contribution: the
// EDM fabric (PHY-layer remote-memory protocol + centralized in-network
// scheduler). It aliases the user-facing types of internal/edm and
// internal/sched so applications have a single import, and documents how
// the pieces compose:
//
//   - Fabric (internal/edm): N hosts and one EDM switch at 66-bit block
//     granularity — the software testbed. Build with New(DefaultConfig(n)),
//     attach memory controllers, then issue Read/Write/RMW from any host.
//   - Scheduler (internal/sched): the priority-PIM grant engine embedded in
//     the switch; also usable standalone (internal/netsim drives it at
//     message level for the large-scale simulations).
//
// See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
// reproduced evaluation.
package core

import (
	"repro/internal/edm"
	"repro/internal/sched"
)

// Fabric is the block-level EDM testbed (hosts + switch + links).
type Fabric = edm.Fabric

// Config parameterizes a Fabric; DefaultConfig reproduces the paper's
// 25 GbE FPGA testbed.
type Config = edm.Config

// Message is a remote-memory message (RREQ/WREQ/RMWREQ/RRES).
type Message = edm.Message

// Scheduler is the centralized PIM memory-traffic scheduler.
type Scheduler = sched.Scheduler

// Grant is one scheduling decision.
type Grant = sched.Grant

// New builds a fabric.
func New(cfg Config) *Fabric { return edm.New(cfg) }

// DefaultConfig is the paper's testbed configuration for n ports.
func DefaultConfig(n int) Config { return edm.DefaultConfig(n) }
